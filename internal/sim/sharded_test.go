package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// xshard is one shard of the synthetic cross-shard model used by the
// equivalence tests: a deterministic LCG-driven workload where every
// firing mutates shard-local state, records a trace entry, schedules a
// local follow-up, and occasionally sends a payload to another shard.
// Delivered payloads mutate the destination's RNG, so the model's trace
// is sensitive to the exact interleaving of local events and barrier-
// injected messages — any nondeterminism in the executor changes the
// trace bytes.
type xshard struct {
	se    *ShardedEngine
	id    int
	n     int
	rng   uint64
	fired int
	limit int
	trace []uint64
}

func (s *xshard) next() uint64 {
	s.rng = s.rng*6364136223846793005 + 1442695040888963407
	return s.rng
}

func (s *xshard) step() {
	eng := s.se.Shard(s.id)
	r := s.next()
	s.trace = append(s.trace, eng.Now(), r)
	s.fired++
	if s.fired < s.limit {
		eng.Schedule(1+Cycle(r%5), s.step)
	}
	if s.n > 1 && r%7 == 0 {
		dstID := (s.id + 1 + int(r%uint64(s.n-1))) % s.n
		payload := r >> 13
		s.se.Send(s.id, dstID, s.se.Window()+Cycle(r%9), func() {
			// Runs on shard dstID; touches only that shard's state.
			d := shardOf(s.se, dstID)
			d.rng ^= payload
			d.trace = append(d.trace, s.se.Shard(dstID).Now(), d.rng)
		})
	}
}

// shardOf finds the xshard bound to engine shard id (stashed on the
// model slice via closure in runModel; this indirection keeps the Send
// closure from capturing cross-shard pointers at construction time in
// a way that would obscure what state it touches).
var modelShards map[*ShardedEngine][]*xshard

func shardOf(se *ShardedEngine, id int) *xshard { return modelShards[se][id] }

// runModel builds an n-shard model, runs it to quiescence, and returns
// the per-shard traces plus the final frontier.
func runModel(n int, window Cycle, parallel bool, firesPerShard int) ([][]uint64, Cycle) {
	se := NewShardedEngine(n, window)
	se.Parallel = parallel
	shards := make([]*xshard, n)
	if modelShards == nil {
		modelShards = make(map[*ShardedEngine][]*xshard)
	}
	modelShards[se] = shards
	defer delete(modelShards, se)
	for i := range shards {
		shards[i] = &xshard{se: se, id: i, n: n, rng: 0x9e3779b9 + uint64(i)*0xbf58476d, limit: firesPerShard}
		s := shards[i]
		se.Shard(i).Schedule(Cycle(i+1), s.step)
	}
	se.Run(0)
	traces := make([][]uint64, n)
	for i, s := range shards {
		traces[i] = s.trace
	}
	return traces, se.Now()
}

// TestShardedParallelMatchesSequential is the headline determinism
// claim: the parallel epoch executor produces traces byte-identical to
// the sequential reference (shards advanced in index order), across
// shard counts and GOMAXPROCS settings, under -race.
func TestShardedParallelMatchesSequential(t *testing.T) {
	const fires = 400
	for _, n := range []int{1, 2, 4, 8} {
		for _, window := range []Cycle{1, 8} {
			ref, refNow := runModel(n, window, false, fires)
			for _, procs := range []int{1, runtime.NumCPU()} {
				t.Run(fmt.Sprintf("shards=%d/window=%d/procs=%d", n, window, procs), func(t *testing.T) {
					old := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(old)
					got, gotNow := runModel(n, window, true, fires)
					if gotNow != refNow {
						t.Fatalf("frontier diverged: parallel %d, sequential %d", gotNow, refNow)
					}
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("traces diverged from sequential reference")
					}
				})
			}
		}
	}
}

// TestShardedSingleShardMatchesEngine pins the degenerate case: a
// 1-shard ShardedEngine running a purely local workload fires the same
// events at the same cycles as a plain Engine.
func TestShardedSingleShardMatchesEngine(t *testing.T) {
	model := func(sched func(delay Cycle, fn func()), now func() Cycle) []uint64 {
		var trace []uint64
		rng := uint64(12345)
		fired := 0
		var step func()
		step = func() {
			rng = rng*6364136223846793005 + 1442695040888963407
			trace = append(trace, now(), rng)
			if fired++; fired < 300 {
				sched(1+Cycle(rng%7), step)
			}
		}
		sched(1, step)
		return trace
	}

	plain := NewEngine()
	var plainTrace []uint64
	plainTrace = model(plain.Schedule, plain.Now)
	plain.Run(0)

	se := NewShardedEngine(1, 4)
	se.Parallel = true
	var shTrace []uint64
	shTrace = model(se.Shard(0).Schedule, se.Shard(0).Now)
	se.Run(0)

	if !reflect.DeepEqual(plainTrace, shTrace) {
		t.Fatalf("1-shard ShardedEngine diverged from plain Engine")
	}
	if plain.Now() != se.Shard(0).Now() {
		t.Fatalf("final clocks diverged: engine %d, sharded %d", plain.Now(), se.Shard(0).Now())
	}
}

// TestShardedMergeOrder pins the barrier's deterministic injection
// order for same-cycle deliveries: (deliverAt, source shard, per-source
// sequence).
func TestShardedMergeOrder(t *testing.T) {
	se := NewShardedEngine(3, 10)
	var got []string
	se.Shard(1).Schedule(5, func() {
		se.Send(1, 2, 10, func() { got = append(got, "s1a") })
		se.Send(1, 2, 10, func() { got = append(got, "s1b") })
	})
	se.Shard(0).Schedule(5, func() {
		se.Send(0, 2, 10, func() { got = append(got, "s0") })
	})
	se.Run(0)
	want := []string{"s0", "s1a", "s1b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order = %v, want %v", got, want)
	}
}

// TestShardedSendBelowWindowPanics: a cross-shard delay under the
// lookahead window would let a message land inside the epoch it was
// sent in, silently breaking determinism — it must panic instead.
func TestShardedSendBelowWindowPanics(t *testing.T) {
	se := NewShardedEngine(2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("Send with delay below the window did not panic")
		}
	}()
	se.Send(0, 1, 7, func() {})
}

// TestShardedZeroWindowRejected pins the constructor contract: a zero
// lookahead window would make every cross-shard Send illegal and the
// epoch loop degenerate, so NewShardedEngine must reject it outright
// rather than document some partial semantics.
func TestShardedZeroWindowRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardedEngine with a zero window did not panic")
		}
	}()
	NewShardedEngine(2, 0)
}

// TestShardedKeyedMergeOrder: SendKeyed deliveries at the same cycle
// merge in ascending key order regardless of source shard, and fire in
// key order on the destination heap even when injected out of key
// order; plain Send messages keep their historical order ahead of all
// keyed ones.
func TestShardedKeyedMergeOrder(t *testing.T) {
	se := NewShardedEngine(3, 10)
	var got []string
	se.Shard(2).Schedule(5, func() {
		se.SendKeyed(2, 0, 10, 7, func() { got = append(got, "k7") })
	})
	se.Shard(1).Schedule(5, func() {
		se.SendKeyed(1, 0, 10, 3, func() { got = append(got, "k3") })
		se.Send(1, 0, 10, func() { got = append(got, "plain") })
	})
	se.Run(0)
	want := []string{"plain", "k3", "k7"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("keyed merge order = %v, want %v", got, want)
	}
}

// TestKeyedScheduleOrder: on a single Engine, same-cycle keyed events
// fire in key order independent of scheduling order, after any plain
// events at that cycle.
func TestKeyedScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []string
	e.ScheduleKeyed(5, 9, func() { got = append(got, "k9") })
	e.ScheduleKeyed(5, 2, func() { got = append(got, "k2") })
	e.Schedule(5, func() { got = append(got, "plain") })
	e.Run(0)
	want := []string{"plain", "k2", "k9"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("keyed schedule order = %v, want %v", got, want)
	}
}

// TestShardedRunLimit: Run(limit) leaves events beyond the limit
// pending and parks the frontier at the limit, like Engine.Run.
func TestShardedRunLimit(t *testing.T) {
	se := NewShardedEngine(2, 4)
	fired := 0
	se.Shard(0).Schedule(3, func() { fired++ })
	se.Shard(1).Schedule(100, func() { fired++ })
	if now := se.Run(50); now != 50 {
		t.Fatalf("Run(50) = %d, want 50", now)
	}
	if fired != 1 {
		t.Fatalf("fired %d events before the limit, want 1", fired)
	}
	if se.Pending() != 1 {
		t.Fatalf("%d events pending, want 1", se.Pending())
	}
	if now := se.Run(0); now < 100 {
		t.Fatalf("resumed Run stopped at %d, want >= 100", now)
	}
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}

// TestShardedReset: Reset returns the executor to a reusable zero
// state and a rerun reproduces the original trace.
func TestShardedReset(t *testing.T) {
	se := NewShardedEngine(2, 4)
	se.Shard(0).Schedule(1, func() {})
	se.Run(0)
	se.Reset()
	if se.Now() != 0 || se.Pending() != 0 {
		t.Fatalf("after Reset: now=%d pending=%d, want 0/0", se.Now(), se.Pending())
	}
}
