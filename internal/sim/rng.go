package sim

import "math/bits"

// RNG is a small splitmix64 pseudo-random generator. It is used instead
// of math/rand so that its state is a single word that can be captured
// in processor snapshots and restored on rollback (re-execution after a
// rollback must regenerate the same instruction stream).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// State returns the current internal state (for snapshots).
func (r *RNG) State() uint64 { return r.state }

// Restore resets the internal state (for rollback).
func (r *RNG) Restore(s uint64) { r.state = s }

// Next returns the next 64-bit pseudo-random value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
//
// The bounded draw is Lemire's multiply-shift rejection method: the
// former Next()%n was modulo-biased for non-power-of-two n (low values
// slightly over-represented), which skewed every profile knob routed
// through Intn — backoff jitter, footprint indices, burst lengths.
// State stays a single word (only Next advances it), so snapshot and
// rollback semantics are unchanged: re-execution from a restored state
// regenerates the identical draw sequence.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Next(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Next(), un)
		}
	}
	return int(hi)
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Range returns a value in [lo, hi]. lo must be <= hi.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}
