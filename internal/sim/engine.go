// Package sim provides the deterministic discrete-event simulation
// engine underneath the Rebound manycore model. It is single-threaded:
// events fire in (time, insertion-order) order, so a given configuration
// and seed always produces the same execution.
package sim

// Cycle is a point in simulated time, in core clock cycles (1 GHz in the
// paper's configuration, so 1 cycle = 1 ns).
type Cycle = uint64

type event struct {
	at  Cycle
	seq uint64
	fn  func()
}

// before orders events by (time, insertion order).
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
//
// The event queue is a hand-rolled binary min-heap rather than
// container/heap: the interface-based API boxes every event on Push and
// Pop, which made the scheduler the simulator's largest allocation
// source (one heap allocation per scheduled op). The typed heap keeps
// events in a reusable slice and allocates only on queue growth.
type Engine struct {
	now     Cycle
	seq     uint64
	heap    []event
	stopped bool
}

// NewEngine returns an engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// push inserts ev, sifting up to restore the heap order.
func (e *Engine) push(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// pop removes and returns the minimum event. The queue must not be
// empty.
func (e *Engine) pop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the fn reference
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h[l].before(h[least]) {
			least = l
		}
		if r < n && h[r].before(h[least]) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	e.heap = h
	return top
}

// Schedule runs fn after delay cycles. A delay of 0 runs fn after the
// current event completes (still at the same cycle). Events scheduled
// for the same cycle fire in scheduling order.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.seq++
	e.push(event{at: e.now + delay, seq: e.seq, fn: fn})
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.Schedule(when-e.now, fn)
}

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

// Stop makes Run return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Run fires events until the queue is empty, Stop is called, or the
// next event lies beyond limit (0 means no limit). It returns the cycle
// at which the engine stopped.
func (e *Engine) Run(limit Cycle) Cycle {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if limit != 0 && e.heap[0].at > limit {
			e.now = limit
			return e.now
		}
		ev := e.pop()
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Step fires exactly one event if any is pending and returns whether an
// event fired. Used by tests that need fine-grained control.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	ev.fn()
	return true
}
