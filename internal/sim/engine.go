// Package sim provides the deterministic discrete-event simulation
// engine underneath the Rebound manycore model. It is single-threaded:
// events fire in (time, insertion-order) order, so a given configuration
// and seed always produces the same execution.
package sim

import "container/heap"

// Cycle is a point in simulated time, in core clock cycles (1 GHz in the
// paper's configuration, so 1 cycle = 1 ns).
type Cycle = uint64

type event struct {
	at  Cycle
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now     Cycle
	seq     uint64
	heap    eventHeap
	stopped bool
}

// NewEngine returns an engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule runs fn after delay cycles. A delay of 0 runs fn after the
// current event completes (still at the same cycle). Events scheduled
// for the same cycle fire in scheduling order.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.seq++
	heap.Push(&e.heap, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.Schedule(when-e.now, fn)
}

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

// Stop makes Run return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Run fires events until the queue is empty, Stop is called, or the
// next event lies beyond limit (0 means no limit). It returns the cycle
// at which the engine stopped.
func (e *Engine) Run(limit Cycle) Cycle {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		ev := e.heap[0]
		if limit != 0 && ev.at > limit {
			e.now = limit
			return e.now
		}
		heap.Pop(&e.heap)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Step fires exactly one event if any is pending and returns whether an
// event fired. Used by tests that need fine-grained control.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	ev.fn()
	return true
}
