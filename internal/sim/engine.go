// Package sim provides the deterministic discrete-event simulation
// engine underneath the Rebound manycore model. It is single-threaded:
// events fire in (time, insertion-order) order, so a given configuration
// and seed always produces the same execution.
package sim

// Cycle is a point in simulated time, in core clock cycles (1 GHz in the
// paper's configuration, so 1 cycle = 1 ns).
type Cycle = uint64

// Tag identifies what a scheduled event will do, as data: a small kind
// plus an index (typically a processor id). Tagged events are the
// foundation of machine snapshots — a pending tagged event can be saved
// as (at, seq, tag) and re-bound to a fresh closure on restore, whereas
// an untagged event is an opaque closure that cannot outlive its
// capture environment. The zero Tag marks an untagged event.
type Tag struct {
	Kind uint8
	ID   int32
}

// SavedEvent is the snapshot form of one pending tagged event. Key is
// the deterministic ordering key of a keyed event (see ScheduleKeyed);
// it is 0 for every event scheduled through the plain APIs, so legacy
// snapshots are unchanged.
type SavedEvent struct {
	At  Cycle
	Seq uint64
	Tag Tag
	Key uint64 `json:",omitempty"`
}

type event struct {
	at  Cycle
	key uint64
	seq uint64
	tag Tag
	fn  func()
}

// before orders events by (time, key, insertion order). Plain events
// all carry key 0, so among themselves the order is the historical
// (time, insertion order); keyed events sort after plain events at the
// same cycle and among themselves by their caller-chosen key, which is
// what makes their firing order independent of insertion order (and
// hence of shard count, for events injected across ShardedEngine
// barriers).
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.key != o.key {
		return e.key < o.key
	}
	return e.seq < o.seq
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
//
// The event queue is a hand-rolled binary min-heap rather than
// container/heap: the interface-based API boxes every event on Push and
// Pop, which made the scheduler the simulator's largest allocation
// source (one heap allocation per scheduled op). The typed heap keeps
// events in a reusable slice and allocates only on queue growth.
type Engine struct {
	now     Cycle
	seq     uint64
	heap    []event
	stopped bool
	// untagged counts pending events with a zero Tag; a snapshot is only
	// possible when it is zero (every pending event re-bindable).
	untagged int
}

// NewEngine returns an engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// push inserts ev, sifting up to restore the heap order.
func (e *Engine) push(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// pop removes and returns the minimum event. The queue must not be
// empty.
func (e *Engine) pop() event {
	h := e.heap
	top := h[0]
	if top.tag == (Tag{}) {
		e.untagged--
	}
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the fn reference
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h[l].before(h[least]) {
			least = l
		}
		if r < n && h[r].before(h[least]) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	e.heap = h
	return top
}

// Schedule runs fn after delay cycles. A delay of 0 runs fn after the
// current event completes (still at the same cycle). Events scheduled
// for the same cycle fire in scheduling order.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.seq++
	e.untagged++
	e.push(event{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleTagged is Schedule for an event whose behaviour is fully
// determined by its tag plus restorable simulator state: a machine
// snapshot saves it as data and a restore re-binds its closure from the
// tag. tag must be non-zero — a zero tag would corrupt the untagged
// counter that gates snapshot safety, so it panics instead.
func (e *Engine) ScheduleTagged(delay Cycle, tag Tag, fn func()) {
	if tag == (Tag{}) {
		panic("sim: ScheduleTagged with a zero tag (use Schedule)")
	}
	e.seq++
	e.push(event{at: e.now + delay, seq: e.seq, tag: tag, fn: fn})
}

// ScheduleKeyed is Schedule for an event whose same-cycle firing order
// must be independent of scheduling order: same-cycle events fire in
// ascending key order (ties broken by insertion order), and all keyed
// events fire after any plain-scheduled events at the same cycle. The
// caller owns key uniqueness; the stored key is key+1 so that no user
// key collides with the plain-event key 0.
func (e *Engine) ScheduleKeyed(delay Cycle, key uint64, fn func()) {
	e.seq++
	e.untagged++
	e.push(event{at: e.now + delay, key: key + 1, seq: e.seq, fn: fn})
}

// ScheduleKeyedTagged combines ScheduleKeyed ordering with
// ScheduleTagged snapshotability. tag must be non-zero.
func (e *Engine) ScheduleKeyedTagged(delay Cycle, key uint64, tag Tag, fn func()) {
	if tag == (Tag{}) {
		panic("sim: ScheduleKeyedTagged with a zero tag (use ScheduleKeyed)")
	}
	e.seq++
	e.push(event{at: e.now + delay, key: key + 1, seq: e.seq, tag: tag, fn: fn})
}

// scheduleKeyedAbs schedules fn at an absolute cycle with an
// already-shifted internal key. It is the ShardedEngine barrier's
// key-preserving injection path; rawKey 0 is a plain event.
func (e *Engine) scheduleKeyedAbs(when Cycle, rawKey uint64, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	e.untagged++
	e.push(event{at: when, key: rawKey, seq: e.seq, fn: fn})
}

// AllTagged reports whether every pending event carries a tag, i.e.
// whether the queue is snapshotable.
func (e *Engine) AllTagged() bool { return e.untagged == 0 }

// Save captures the scheduler state — current cycle, sequence counter
// and the pending events in heap-array order — appending the events to
// buf[:0]. It fails (ok=false) when any pending event is untagged.
func (e *Engine) Save(buf []SavedEvent) (now Cycle, seq uint64, events []SavedEvent, ok bool) {
	if e.untagged != 0 {
		return 0, 0, buf[:0], false
	}
	buf = buf[:0]
	for _, ev := range e.heap {
		buf = append(buf, SavedEvent{At: ev.at, Seq: ev.seq, Tag: ev.Tag(), Key: ev.key})
	}
	return e.now, e.seq, buf, true
}

// Tag returns the event's tag (helper for Save).
func (ev event) Tag() Tag { return ev.tag }

// Load restores scheduler state captured by Save: the clock, the
// sequence counter and the pending queue, with each event's closure
// re-bound through resolve. events must be in the heap-array order Save
// produced (any heap-valid order works; Save's order trivially is).
func (e *Engine) Load(now Cycle, seq uint64, events []SavedEvent, resolve func(Tag) func()) {
	e.now, e.seq, e.stopped, e.untagged = now, seq, false, 0
	clear(e.heap) // release stale fn references
	e.heap = e.heap[:0]
	for _, sv := range events {
		e.heap = append(e.heap, event{at: sv.At, key: sv.Key, seq: sv.Seq, tag: sv.Tag, fn: resolve(sv.Tag)})
	}
}

// Reset returns the engine to its just-constructed state: cycle 0,
// empty queue. Used by Machine.Reset to recycle a machine's allocations
// across runs.
func (e *Engine) Reset() {
	e.now, e.seq, e.stopped, e.untagged = 0, 0, false, 0
	clear(e.heap)
	e.heap = e.heap[:0]
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.Schedule(when-e.now, fn)
}

// AdvanceTo moves the clock forward to when without firing anything; a
// cycle at or before the current one is a no-op. The machine's
// event-plane settle path aligns idle shard clocks to the epoch
// frontier before re-seeding step events, so the seeded times do not
// depend on when each shard's heap happened to empty. Advancing past a
// pending event would reorder time, so it panics.
func (e *Engine) AdvanceTo(when Cycle) {
	if when <= e.now {
		return
	}
	if len(e.heap) > 0 && e.heap[0].at < when {
		panic("sim: AdvanceTo past a pending event")
	}
	e.now = when
}

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.heap) }

// Stop makes Run return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Run fires events until the queue is empty, Stop is called, or the
// next event lies beyond limit (0 means no limit). It returns the cycle
// at which the engine stopped.
func (e *Engine) Run(limit Cycle) Cycle {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if limit != 0 && e.heap[0].at > limit {
			e.now = limit
			return e.now
		}
		ev := e.pop()
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Step fires exactly one event if any is pending and returns whether an
// event fired. Used by tests that need fine-grained control.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	ev.fn()
	return true
}
