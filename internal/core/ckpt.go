package core

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ckptOp is one run of the distributed checkpointing protocol
// (§3.3.4): the initiator collects the Interaction Set for
// Checkpointing (ICHK) transitively through MyProducers, then drives
// the group writeback.
type ckptOp struct {
	r         *Rebound
	initiator int
	io        bool
	// outer marks a two-level outer (chip-wide) checkpoint: every
	// processor is contacted unconditionally and the consumer-decline
	// rule is suspended — the set is total by construction.
	outer bool
	// crossed records that a local two-level collection found a producer
	// outside the initiator's group. The attempt is abandoned (treated
	// like a Busy collision) and escalated to the outer level; a
	// checkpoint excluding a transitive producer is never committed.
	crossed bool

	collecting bool
	aborted    bool

	members   map[int]*memberState
	contacted map[int]bool
	pending   int // outstanding CK? replies
	busyHit   bool

	start     sim.Cycle
	wbStart   sim.Cycle
	wbLeft    int
	drainLeft int
	recIdx    int
	lines     uint64
}

type memberState struct {
	rec      *machine.CkptRec
	wbDoneAt sim.Cycle
}

// orderedMembers returns the member ids in ascending order: map
// iteration order is randomised in Go, and the simulator must stay
// deterministic.
func (op *ckptOp) orderedMembers() []int {
	ids := make([]int, 0, len(op.members))
	for id := range op.members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// initiateCkpt starts the protocol with ps as initiator. Under
// TwoLevel an initiation is promoted to the outer level when the
// outer period has elapsed or an escalation is latched; the promotion
// lives here (not in IntervalExpired) so every initiation path —
// including the I/O retry closure of releaseAll — converges on the
// outer attempt instead of re-running a local attempt that would
// cross the group boundary again and livelock.
func (r *Rebound) initiateCkpt(ps *pstate, io bool) {
	if r.opts.TwoLevel && (r.wantOuter || r.sinceOuter >= twoLevelOuterEvery) {
		r.initiateOuter(ps, io)
		return
	}
	op := &ckptOp{
		r:          r,
		initiator:  ps.p.ID(),
		io:         io,
		collecting: true,
		members:    map[int]*memberState{ps.p.ID(): {}},
		contacted:  map[int]bool{ps.p.ID(): true},
		start:      r.m.Now(),
		recIdx:     -1,
	}
	r.setBusy(ps, true)
	ps.cop = op
	ps.p.RequestPause(func() {
		ps.pausedAt = r.m.Now()
		op.expand(ps.p.ID())
		op.maybeStart()
	})
}

// expand sends CK? to the (not yet contacted) producers of member q.
// The paper has members forward CK? themselves and report their
// producer lists to the initiator in the Accept; driving the expansion
// from the initiator is equivalent and uses the same message count.
func (op *ckptOp) expand(q int) {
	r := op.r
	r.m.Procs[q].Deps().Current().MyProducers.ForEach(func(pr int) {
		if op.contacted[pr] {
			return
		}
		if r.opts.TwoLevel && !op.outer && r.group(pr) != r.group(op.initiator) {
			// A local two-level collection never crosses the group
			// boundary: committing without pr would break the
			// committed-checkpoint invariant, so the attempt is marked
			// for escalation instead (maybeStart abandons it).
			op.crossed = true
			return
		}
		op.contacted[pr] = true
		op.pending++
		r.m.Send(q, pr, func() { r.onCK(op, pr, q) })
	})
}

// initiateOuter starts a two-level outer checkpoint: ps pauses, then
// every other processor is contacted unconditionally (ascending id —
// deterministic). The op reuses the whole ckptOp machinery; only the
// collection rules differ (see onCK/onAccept).
func (r *Rebound) initiateOuter(ps *pstate, io bool) {
	op := &ckptOp{
		r:          r,
		initiator:  ps.p.ID(),
		io:         io,
		outer:      true,
		collecting: true,
		members:    map[int]*memberState{ps.p.ID(): {}},
		contacted:  map[int]bool{ps.p.ID(): true},
		start:      r.m.Now(),
		recIdx:     -1,
	}
	r.setBusy(ps, true)
	ps.cop = op
	ps.p.RequestPause(func() {
		ps.pausedAt = r.m.Now()
		for id := range r.ps {
			if op.contacted[id] {
				continue
			}
			op.contacted[id] = true
			op.pending++
			id := id
			r.m.Send(op.initiator, id, func() { r.onCK(op, id, op.initiator) })
		}
		op.maybeStart()
	})
}

// onCK handles a CK? request at processor q, asked by consumer c.
func (r *Rebound) onCK(op *ckptOp, q, c int) {
	qs := r.ps[q]
	reply := func(fn func()) { r.m.Send(q, op.initiator, fn) }
	if op.aborted {
		reply(func() { op.onDecline() })
		return
	}
	if qs.busy || qs.inBarCk {
		reply(func() { op.onBusy() })
		return
	}
	if qs.draining {
		// Nack: the delayed checkpoint must finish first; rush it
		// (§4.1). The initiator treats it as Busy and retries later.
		qs.p.RushDrain()
		reply(func() { op.onBusy() })
		return
	}
	// Decline if q never produced for c in this interval — c's
	// MyProducers was stale, or q recently checkpointed and cleared
	// its MyConsumers (§3.3.4). An outer checkpoint takes everyone:
	// the consumer rule only prunes a dependence-derived set.
	if !op.outer && !qs.p.Deps().Current().MyConsumers.Test(c) {
		reply(func() { op.onDecline() })
		return
	}
	r.setBusy(qs, true)
	qs.cop = op
	qs.p.RequestPause(func() {
		qs.pausedAt = r.m.Now()
		reply(func() { op.onAccept(q) })
	})
}

func (op *ckptOp) onAccept(q int) {
	op.pending--
	r := op.r
	if r.ps[q].cop == op {
		// Track the member even if the op was aborted meanwhile, so
		// releaseAll resumes it. An outer op contacted everyone up
		// front; there is nothing to expand.
		op.members[q] = &memberState{}
		if !op.aborted && !op.outer {
			op.expand(q)
		}
	}
	op.maybeStart()
}

func (op *ckptOp) onDecline() {
	op.pending--
	op.maybeStart()
}

func (op *ckptOp) onBusy() {
	op.pending--
	op.busyHit = true
	op.maybeStart()
}

func (op *ckptOp) maybeStart() {
	if !op.collecting || op.pending > 0 {
		return
	}
	op.collecting = false
	if op.aborted {
		op.releaseAll(false)
		return
	}
	if op.busyHit || op.crossed {
		// Deadlock avoidance (§3.3.4): release everyone accepted so
		// far and retry after a random delay. A crossed two-level
		// attempt latches the escalation so the retry — from any
		// initiation path — runs at the outer level.
		if op.crossed {
			op.r.wantOuter = true
		}
		op.releaseAll(true)
		return
	}
	op.startWritebacks()
}

// releaseAll resumes every member without checkpointing.
func (op *ckptOp) releaseAll(retry bool) {
	r := op.r
	for _, id := range op.orderedMembers() {
		ps := r.ps[id]
		if ps.cop != op {
			continue
		}
		ps.cop = nil
		r.setBusy(ps, false)
		r.m.St.SyncDelay[id] += uint64(r.m.Now() - ps.pausedAt)
		ps.retryNotBefore = r.m.Now() + r.backoff()
		ps.p.Resume()
		if retry && id == op.initiator && ps.ioResume != nil {
			// The I/O still needs its checkpoint: retry after backoff.
			r.m.After(r.backoff(), func() {
				if !ps.busy && !ps.draining && ps.ioResume != nil {
					r.initiateCkpt(ps, true)
				}
			})
			continue
		}
		r.releaseHook(ps)
	}
}

// startWritebacks runs the checkpoint proper over the collected set:
// Fig 4.1(a) without delayed writebacks (processors stall for their
// writebacks and synchronise), Fig 4.1(b) with them (processors resume
// at once; the L2 controllers drain in the background).
func (op *ckptOp) startWritebacks() {
	r := op.r
	op.recIdx = r.record(stats.CkptRecord{
		Initiator:  op.initiator,
		Size:       len(op.members),
		SizeStatic: r.closureSize(op.initiator, false),
		SizeExact:  r.closureSize(op.initiator, true),
		Start:      op.start,
		IO:         op.io,
	})
	r.m.Ctrl.Log().Stub(r.m.Now())
	op.wbStart = r.m.Now()
	op.wbLeft = len(op.members)
	op.drainLeft = len(op.members)

	for _, id := range op.orderedMembers() {
		id, ms := id, op.members[id]
		ps := r.ps[id]
		ms.rec = ps.p.BeginCheckpoint()
		if r.opts.DelayedWB {
			op.lines += ps.p.MarkDelayed()
			ps.draining = true
			ps.p.StartDrain(func() {
				ps.draining = false
				ps.p.FinishCheckpoint(ms.rec)
				op.drainDone()
				r.releaseHook(ps)
			})
			ps.p.OpenNextEpoch(func() {
				r.m.St.SyncDelay[id] += uint64(r.m.Now() - ps.pausedAt)
				if ps.cop == op {
					ps.cop = nil
					r.setBusy(ps, false)
				}
				ps.p.Resume()
				r.releaseHook(ps)
			})
		} else {
			op.lines += ps.p.WritebackAllForeground(func() {
				r.m.St.WBDelay[id] += uint64(r.m.Now() - op.wbStart)
				ms.wbDoneAt = r.m.Now()
				ps.p.FinishCheckpoint(ms.rec)
				if op.aborted || ps.cop != op {
					// Finish individually: the checkpoint is still a
					// valid per-processor recovery point.
					op.resumeMember(id)
					return
				}
				op.wbLeft--
				if op.wbLeft == 0 {
					op.finishForeground()
				}
			})
		}
	}
}

// resumeMember reopens the member's next interval and resumes it
// (used on the individual-finish path after an abort).
func (op *ckptOp) resumeMember(id int) {
	r := op.r
	ps := r.ps[id]
	if ps.rop != nil || !ps.p.Paused() {
		// Claimed by a rollback (or already running): leave it alone.
		return
	}
	ps.p.OpenNextEpoch(func() {
		if ps.cop == op {
			ps.cop = nil
			r.setBusy(ps, false)
		}
		ps.p.Resume()
		r.releaseHook(ps)
	})
}

// finishForeground is the closing sync of Fig 4.1(a): all writebacks
// done, everyone resumes together.
func (op *ckptOp) finishForeground() {
	r := op.r
	now := r.m.Now()
	for _, id := range op.orderedMembers() {
		id, ms := id, op.members[id]
		ps := r.ps[id]
		if ps.cop != op {
			continue
		}
		r.m.St.WBImbalance[id] += uint64(now - ms.wbDoneAt)
		// Stall before the writeback started was coordination cost.
		if op.wbStart > ps.pausedAt {
			r.m.St.SyncDelay[id] += uint64(op.wbStart - ps.pausedAt)
		}
		// busy clears only once the next epoch is open: a processor
		// stalled on Dep register pressure must keep answering Busy.
		ps.p.OpenNextEpoch(func() {
			if ps.cop == op {
				ps.cop = nil
				r.setBusy(ps, false)
			}
			ps.p.Resume()
			r.releaseHook(ps)
		})
	}
	op.complete()
}

// drainDone accounts one member's finished background drain; the
// checkpoint completes when the last drain ends (Fig 4.1(b)'s closing
// sync).
func (op *ckptOp) drainDone() {
	op.drainLeft--
	if op.drainLeft == 0 && !op.aborted {
		op.complete()
	}
}

func (op *ckptOp) complete() {
	r := op.r
	if op.recIdx >= 0 {
		rec := &r.m.St.Checkpoints[op.recIdx]
		rec.End = r.m.Now()
		rec.Lines = op.lines
	}
	if r.opts.TwoLevel {
		// Outer-level cadence: a committed outer checkpoint resets the
		// period and clears any latched escalation; a committed local
		// one advances it. An aborted op never completes, so a pending
		// escalation survives until an outer checkpoint actually lands.
		if op.outer {
			r.sinceOuter, r.wantOuter = 0, false
		} else {
			r.sinceOuter++
		}
	}
}

// abortCkpt is called when a fault preempts an in-flight checkpoint
// (§3.3.4: "a fault detected in a processor while checkpointing aborts
// the whole checkpoint"). Members still collecting are released;
// members already writing back finish individually (their checkpoints
// remain valid per-processor recovery points); rolled-back members are
// handled by the rollback itself.
func (r *Rebound) abortCkpt(op *ckptOp) {
	if op.aborted {
		return
	}
	op.aborted = true
	if op.collecting {
		// Members pause asynchronously; releaseAll runs when the last
		// reply arrives (maybeStart checks aborted). Members already
		// paused can be released right away.
		for _, id := range op.orderedMembers() {
			ps := r.ps[id]
			if ps.cop == op && ps.p.Paused() && op.members[id].rec == nil {
				ps.cop = nil
				r.setBusy(ps, false)
				ps.retryNotBefore = r.m.Now() + r.backoff()
				ps.p.Resume()
				r.releaseHook(ps)
			}
		}
		return
	}
	// Writeback phase: foreground members finish individually via
	// their writeback callbacks; delayed members already resumed and
	// their drains complete per processor. Nothing to do here.
}
