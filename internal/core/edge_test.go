package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

// Edge cases of the distributed protocols.

func TestConcurrentInitiatorsResolve(t *testing.T) {
	// A heavily coupled workload makes many processors expire their
	// intervals nearly simultaneously; the Busy/backoff arbitration must
	// keep converging to completed checkpoints, not livelock.
	prof := workload.ByName("Radix") // barriered: everyone expires together
	m := run(t, 8, prof, NewRebound(Options{DelayedWB: true}), 1_000_000)
	if len(m.St.Checkpoints) < 3 {
		t.Fatalf("only %d checkpoints completed under contention", len(m.St.Checkpoints))
	}
	for _, ck := range m.St.Checkpoints {
		if ck.End == 0 {
			t.Fatal("a checkpoint never completed")
		}
	}
}

func TestDepSetPressureStallsButProgresses(t *testing.T) {
	// Two Dep register sets with a large L: new intervals cannot open
	// until old checkpoints age past L, so processors stall — but the
	// run must still complete.
	c := cfg(4)
	c.DepSets = 2
	c.DetectLatency = 250_000 // far beyond the interval in cycles
	m := machine.New(c, workload.Uniform(), NewRebound(Options{}))
	m.Run(400_000)
	m.FinalizeStats()
	if len(m.St.Checkpoints) == 0 {
		t.Fatal("no checkpoints under dep-set pressure")
	}
	if m.St.DepStallCycles == 0 {
		t.Fatal("expected Dep register stalls with 2 sets and a huge L")
	}
}

func TestFaultDuringCheckpointAborts(t *testing.T) {
	// Inject the fault exactly while checkpoints are being collected /
	// written: the checkpoint must abort (§3.3.4) and recovery must
	// still complete.
	c := cfg(8)
	prof := workload.Uniform()
	prof.SharedFrac = 0.3
	sch := NewRebound(Options{DelayedWB: true})
	m := machine.New(c, prof, sch)
	m.Run(8 * c.CkptInterval * 9 / 10) // just before the first expiry wave
	victim := m.Procs[3]
	victim.InjectFault()
	// Detection lands mid-checkpoint with high probability.
	m.After(c.DetectLatency/4, func() { sch.FaultDetected(victim) })
	m.Run(600_000)
	m.RunCycles(5_000_000)
	if len(m.St.Rollbacks) == 0 {
		t.Fatal("no rollback")
	}
	if victim.Faulty() {
		t.Fatal("fault survived")
	}
	if _, any := m.Ctrl.Memory().AnyPoison(); any {
		t.Fatal("poison survived abort-and-recover")
	}
	// The machine keeps taking checkpoints afterwards.
	before := len(m.St.Checkpoints)
	m.Run(400_000)
	if len(m.St.Checkpoints) <= before {
		t.Fatal("no checkpoints after aborted one")
	}
	m.CheckCoherence()
}

func TestTwoFaultsBackToBack(t *testing.T) {
	c := cfg(4)
	sch := NewRebound(Options{DelayedWB: true})
	m := machine.New(c, workload.Uniform(), sch)
	m.Run(300_000)
	a, b := m.Procs[0], m.Procs[2]
	a.InjectFault()
	b.InjectFault()
	// Both detected within a short window: the rollback protocols must
	// arbitrate (Busy + backoff) and both recover.
	m.After(1_000, func() { sch.FaultDetected(a) })
	m.After(1_800, func() { sch.FaultDetected(b) })
	m.Run(600_000)
	m.RunCycles(8_000_000)
	if a.Faulty() || b.Faulty() {
		t.Fatal("a fault survived the double recovery")
	}
	if _, any := m.Ctrl.Memory().AnyPoison(); any {
		t.Fatal("poison survived double recovery")
	}
	if len(m.St.Rollbacks) == 0 {
		t.Fatal("no rollbacks recorded")
	}
}

func TestIOCheckpointsOnlySmallSet(t *testing.T) {
	prof := workload.ByName("Blackscholes")
	c := cfg(16)
	sch := NewRebound(Options{DelayedWB: true})
	ioProf := *prof
	ioProf.IOPeriod = 12_000
	ioProf.IOCore = 1
	m := machine.New(c, &ioProf, sch)
	m.Run(1_000_000)
	m.FinalizeStats()
	ioCk, ioSize := 0, 0
	for _, ck := range m.St.Checkpoints {
		if ck.IO {
			ioCk++
			ioSize += ck.Size
		}
	}
	if ioCk == 0 {
		t.Fatal("no I/O checkpoints")
	}
	if avg := float64(ioSize) / float64(ioCk); avg > 12 {
		t.Fatalf("I/O checkpoints average %.1f of 16 procs; should be a small set", avg)
	}
}

func TestGlobalSchemeSurvivesIOAndFaultMix(t *testing.T) {
	prof := workload.Uniform()
	prof.IOPeriod = 20_000
	c := cfg(4)
	sch := NewGlobal(true)
	m := machine.New(c, prof, sch)
	m.Run(200_000)
	m.Procs[1].InjectFault()
	m.After(c.DetectLatency/2, func() { sch.FaultDetected(m.Procs[1]) })
	m.Run(600_000)
	m.RunCycles(8_000_000)
	if m.Procs[1].Faulty() {
		t.Fatal("fault survived")
	}
	if _, any := m.Ctrl.Memory().AnyPoison(); any {
		t.Fatal("poison survived")
	}
	before := m.TotalInstructions()
	m.Run(100_000)
	if m.TotalInstructions() == before {
		t.Fatal("machine wedged after I/O + fault mix")
	}
}
