package core

import (
	"sort"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// rollOp is one run of the distributed rollback protocol (§3.3.5,
// refined by §4.2): the initiator collects the Interaction Set for
// Recovery (IREC) transitively through the MyConsumers of every
// interval being rolled back, then the whole set restores from the log.
type rollOp struct {
	r         *Rebound
	initiator int

	collecting bool
	members    map[int]bool
	contacted  map[int]bool
	pending    int
	busyHit    bool

	start sim.Cycle
}

// orderedMembers returns member ids in ascending order (determinism).
func (op *rollOp) orderedMembers() []int {
	ids := make([]int, 0, len(op.members))
	for id := range op.members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (r *Rebound) startRollback(ps *pstate) {
	if ps.rop != nil {
		// Already inside a rollback. Whether its restore covers this
		// detection depends on when the fault landed relative to the
		// restore, so defer the decision: when the rollback releases
		// the processor, surviving fault state triggers a fresh one.
		ps.redetect = true
		return
	}
	// A fault detected while checkpointing aborts the checkpoint
	// (§3.3.4).
	if ps.cop != nil {
		r.abortCkpt(ps.cop)
		ps.cop = nil
	}
	r.detachFromBarCk(ps)
	op := &rollOp{
		r:          r,
		initiator:  ps.p.ID(),
		collecting: true,
		members:    map[int]bool{ps.p.ID(): true},
		contacted:  map[int]bool{ps.p.ID(): true},
		start:      r.m.Now(),
	}
	ps.rop = op
	r.setBusy(ps, true)
	ps.p.RequestPause(func() {
		ps.pausedAt = r.m.Now()
		op.expand(ps.p.ID())
		op.maybeExecute()
	})
}

// expand sends Roll? to every consumer of the intervals member q will
// roll back (the OR of the MyConsumers of all epochs from its rollback
// target onwards, §4.2).
func (op *rollOp) expand(q int) {
	r := op.r
	p := r.m.Procs[q]
	target := p.LatestSafeCkpt()
	p.Deps().ConsumersFrom(target.OpenedEpoch).ForEach(func(c int) {
		if op.contacted[c] {
			return
		}
		op.contacted[c] = true
		op.pending++
		r.m.Send(q, c, func() { r.onRoll(op, c, q) })
	})
}

// reExpand re-contacts consumers of member q that are not members yet
// and currently record a live dependence on q — including processors
// that were contacted before and declined: a decline only certifies the
// dependence was dead at decline time, and the processor may have
// consumed q's (poisoned) data since. The listsProducer pre-check is
// the same predicate onRoll accepts on, so a re-contact either joins
// the set or hit a transient state change; skipped processors generate
// no further round, which is what terminates the fixpoint.
func (op *rollOp) reExpand(q int, round map[int]bool) {
	r := op.r
	p := r.m.Procs[q]
	target := p.LatestSafeCkpt()
	p.Deps().ConsumersFrom(target.OpenedEpoch).ForEach(func(c int) {
		if op.members[c] || round[c] || !r.listsProducer(c, q) {
			return
		}
		round[c] = true
		op.contacted[c] = true
		op.pending++
		r.m.Send(q, c, func() { r.onRoll(op, c, q) })
	})
}

// listsProducer reports whether c currently records q as a producer in
// some live interval: the accept predicate of onRoll.
func (r *Rebound) listsProducer(c, q int) bool {
	for _, s := range r.ps[c].p.Deps().Live() {
		if s.MyProducers.Test(q) {
			return true
		}
	}
	return false
}

// onRoll handles a Roll? request at processor c, sent by producer q.
func (r *Rebound) onRoll(op *rollOp, c, q int) {
	cs := r.ps[c]
	reply := func(fn func()) { r.m.Send(c, op.initiator, fn) }
	if cs.rop == op {
		// Cyclic dependence: already a member.
		reply(func() { op.onReply(false) })
		return
	}
	if cs.rop != nil {
		// Independent rollback in progress: Busy (§3.3.5).
		reply(func() { op.onBusy() })
		return
	}
	// Decline if c no longer shows q as a producer in any live interval
	// (it rolled back independently and cleared its MyProducers).
	if !r.listsProducer(c, q) {
		reply(func() { op.onReply(false) })
		return
	}
	// A rollback preempts any checkpoint c participates in.
	if cs.cop != nil {
		r.abortCkpt(cs.cop)
		cs.cop = nil
	}
	r.detachFromBarCk(cs)
	cs.rop = op
	r.setBusy(cs, true)
	cs.p.RequestPause(func() {
		cs.pausedAt = r.m.Now()
		reply(func() { op.onAccept(c) })
	})
}

func (op *rollOp) onAccept(c int) {
	op.pending--
	if op.r.ps[c].rop == op {
		op.members[c] = true
		op.expand(c)
	}
	op.maybeExecute()
}

func (op *rollOp) onReply(busy bool) {
	op.pending--
	op.maybeExecute()
}

func (op *rollOp) onBusy() {
	op.pending--
	op.busyHit = true
	op.maybeExecute()
}

func (op *rollOp) maybeExecute() {
	if !op.collecting || op.pending > 0 {
		return
	}
	op.collecting = false
	r := op.r
	if op.busyHit {
		// Two rollbacks collided: release and retry after a random
		// backoff. The fault is still pending at the initiator.
		init := op.initiator
		for _, id := range op.orderedMembers() {
			ps := r.ps[id]
			if ps.rop != op {
				continue
			}
			ps.rop = nil
			r.setBusy(ps, false)
			ps.p.Resume()
			r.releaseHook(ps)
			// No restore happened, so an absorbed detection's fault
			// state is certainly intact; retry it like the initiator's.
			if ps.redetect {
				ps.redetect = false
				r.m.After(r.backoff(), func() { r.startRollback(ps) })
			}
		}
		r.m.After(r.backoff(), func() { r.startRollback(r.ps[init]) })
		return
	}
	// Poison keeps propagating while the set is collected: a processor
	// that consumes a member's data after that member's MyConsumers were
	// read would escape the restore (and a fault detected at a member
	// mid-rollback is deliberately absorbed by this rollback, so nothing
	// else would catch the escapee). Re-expand from every member until
	// no live consumer outside the set remains; the final no-change
	// check and the restore then happen within one event, leaving no
	// window to escape through.
	round := make(map[int]bool)
	for _, id := range op.orderedMembers() {
		op.reExpand(id, round)
	}
	if op.pending > 0 {
		op.collecting = true
		return
	}
	op.execute()
}

// execute restores the whole interaction set: the log rewinds memory
// (reverse order, per-processor epochs), caches are invalidated,
// register state restored; everyone resumes when the restoration
// traffic finishes.
func (op *rollOp) execute() {
	r := op.r
	procs := make([]*machine.Proc, 0, len(op.members))
	ids := op.orderedMembers()
	maxDist := sim.Cycle(0)
	for _, id := range ids {
		p := r.m.Procs[id]
		procs = append(procs, p)
		if rec := p.LatestSafeCkpt(); rec.CompletedAt != ^sim.Cycle(0) {
			if d := r.m.Now() - rec.CompletedAt; d > maxDist {
				maxDist = d
			}
		}
	}
	_, restored, done := r.m.RollbackProcs(procs)
	r.m.St.Rollbacks = append(r.m.St.Rollbacks, stats.RollRecord{
		Initiator:         op.initiator,
		Members:           ids,
		Size:              len(op.members),
		Start:             op.start,
		End:               done,
		Restored:          restored,
		MaxRollbackCycles: maxDist,
	})
	r.m.Eng.At(done, func() {
		for _, id := range op.orderedMembers() {
			ps := r.ps[id]
			r.m.St.RollStall[id] += uint64(r.m.Now() - ps.pausedAt)
			ps.rop = nil
			r.setBusy(ps, false)
			ps.retryNotBefore = r.m.Now() + r.backoff()
			// A pending I/O continuation is stale after rollback: the
			// processor re-executes the I/O op from its snapshot.
			ps.ioResume = nil
			ps.p.Resume()
		}
		// Re-evaluate detections absorbed during this rollback: a fault
		// injected after a member's restore (while the protocol held it
		// paused) survives the restore and needs a rollback of its own.
		for _, id := range op.orderedMembers() {
			ps := r.ps[id]
			if !ps.redetect {
				continue
			}
			ps.redetect = false
			if ps.p.Faulty() || ps.p.Tainted() {
				r.startRollback(ps)
			}
		}
	})
}
