package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

func cfg(n int) machine.Config {
	c := machine.DefaultConfig(n)
	c.CkptInterval = 25_000
	c.DetectLatency = 6_000
	return c
}

func run(t *testing.T, n int, prof *workload.Profile, s machine.Scheme, instr uint64) *machine.Machine {
	t.Helper()
	m := machine.New(cfg(n), prof, s)
	m.Run(instr)
	m.FinalizeStats()
	return m
}

func TestGlobalTakesCheckpoints(t *testing.T) {
	m := run(t, 4, workload.Uniform(), NewGlobal(false), 500_000)
	if len(m.St.Checkpoints) < 3 {
		t.Fatalf("only %d global checkpoints", len(m.St.Checkpoints))
	}
	for _, c := range m.St.Checkpoints {
		if c.Size != 4 || c.SizeExact != 4 {
			t.Fatalf("global checkpoint size %d/%d, want 4/4", c.Size, c.SizeExact)
		}
		if c.End <= c.Start {
			t.Fatalf("checkpoint has no duration: %+v", c)
		}
		if c.Lines == 0 {
			t.Fatal("global checkpoint wrote no lines")
		}
	}
	if m.St.L2WritebacksCkpt == 0 {
		t.Fatal("no checkpoint writebacks counted")
	}
	wb, imb, _ := m.St.StallTotals()
	if wb == 0 || imb == 0 {
		t.Fatal("global checkpoint must stall processors (WBDelay/WBImbalance)")
	}
	m.CheckCoherence()
}

func TestGlobalDWBWritesBackInBackground(t *testing.T) {
	m := run(t, 4, workload.Uniform(), NewGlobal(true), 500_000)
	if len(m.St.Checkpoints) < 3 {
		t.Fatalf("only %d checkpoints", len(m.St.Checkpoints))
	}
	if m.St.L2WritebacksBg == 0 {
		t.Fatal("Global_DWB produced no background writebacks")
	}
	wb, _, _ := m.St.StallTotals()
	if wb != 0 {
		t.Fatalf("Global_DWB should not stall for writebacks, WBDelay=%d", wb)
	}
}

func TestReboundTakesLocalCheckpoints(t *testing.T) {
	prof := workload.ByName("Blackscholes") // low sharing: small ICHK
	m := run(t, 8, prof, NewRebound(Options{DelayedWB: true}), 1_200_000)
	if len(m.St.Checkpoints) < 5 {
		t.Fatalf("only %d checkpoints", len(m.St.Checkpoints))
	}
	frac := m.St.AvgICHKFraction()
	if frac <= 0 || frac > 0.8 {
		t.Fatalf("Blackscholes ICHK fraction = %.2f, want small (clustered sharing)", frac)
	}
	for _, c := range m.St.Checkpoints {
		if c.SizeStatic < c.SizeExact {
			t.Fatalf("bloom closure %d smaller than exact closure %d: WSIG lost a dependence",
				c.SizeStatic, c.SizeExact)
		}
	}
	m.CheckCoherence()
}

func TestReboundBarrierAppsChainEveryone(t *testing.T) {
	prof := workload.ByName("Ocean") // barrier every 15k instructions
	m := run(t, 8, prof, NewRebound(Options{DelayedWB: true}), 1_000_000)
	if len(m.St.Checkpoints) == 0 {
		t.Fatal("no checkpoints")
	}
	frac := m.St.AvgICHKFraction()
	// The paper: barrier-heavy codes have ~100% interaction sets.
	if frac < 0.7 {
		t.Fatalf("Ocean ICHK fraction = %.2f, want near 1 (barriers chain all procs)", frac)
	}
}

func TestReboundOverheadBelowGlobal(t *testing.T) {
	prof := workload.ByName("FFT") // barriered + imbalanced
	instr := uint64(1_500_000)
	base := run(t, 8, prof, machine.NullScheme{}, instr)
	glob := run(t, 8, prof, NewGlobal(false), instr)
	rbnd := run(t, 8, prof, NewRebound(Options{DelayedWB: true}), instr)

	ovh := func(m *machine.Machine) float64 {
		return float64(m.St.EndCycle)/float64(base.St.EndCycle) - 1
	}
	og, or := ovh(glob), ovh(rbnd)
	t.Logf("overhead: Global=%.3f Rebound=%.3f", og, or)
	if og <= 0 {
		t.Fatalf("Global overhead %.3f should be positive", og)
	}
	if or >= og {
		t.Fatalf("Rebound overhead %.3f not below Global %.3f", or, og)
	}
}

func TestReboundNoDWBStallsMoreThanDWB(t *testing.T) {
	prof := workload.Uniform()
	instr := uint64(800_000)
	nodwb := run(t, 4, prof, NewRebound(Options{}), instr)
	dwb := run(t, 4, prof, NewRebound(Options{DelayedWB: true}), instr)
	wbN, _, _ := nodwb.St.StallTotals()
	wbD, _, _ := dwb.St.StallTotals()
	if wbN == 0 {
		t.Fatal("Rebound_NoDWB should stall for writebacks")
	}
	if wbD != 0 {
		t.Fatalf("Rebound (DWB) should not stall for writebacks, got %d", wbD)
	}
	if dwb.St.L2WritebacksBg == 0 {
		t.Fatal("Rebound (DWB) produced no background writebacks")
	}
}

func TestReboundFaultRecovery(t *testing.T) {
	c := cfg(8)
	prof := workload.Uniform()
	prof.SharedFrac = 0.3
	sch := NewRebound(Options{DelayedWB: true})
	m := machine.New(c, prof, sch)

	tainted := map[int]bool{}
	m.OnTaint = func(p *machine.Proc) { tainted[p.ID()] = true }

	// Let a few checkpoints happen, then inject a fault.
	m.Run(900_000)
	victim := m.Procs[2]
	victim.InjectFault()
	// Detection after (at most) L cycles.
	m.After(c.DetectLatency/2, func() { sch.FaultDetected(victim) })
	m.Run(900_000)
	m.RunCycles(3_000_000) // let recovery settle
	m.FinalizeStats()

	if len(m.St.Rollbacks) == 0 {
		t.Fatal("no rollback recorded")
	}
	rb := m.St.Rollbacks[0]
	if rb.Restored == 0 || rb.End <= rb.Start {
		t.Fatalf("rollback looks empty: %+v", rb)
	}
	members := map[int]bool{}
	for _, id := range rb.Members {
		members[id] = true
	}
	if !members[victim.ID()] {
		t.Fatal("victim not in its own recovery set")
	}
	// Propagation coverage: every processor tainted before the rollback
	// must be in the recovery interaction set.
	for id := range tainted {
		if !members[id] {
			t.Fatalf("tainted proc %d missing from IREC %v", id, rb.Members)
		}
	}
	if victim.Faulty() {
		t.Fatal("fault not cleared by recovery")
	}
	if a, any := m.Ctrl.Memory().AnyPoison(); any {
		t.Fatalf("poisoned line %#x survived recovery", a)
	}
	for _, p := range m.Procs {
		if p.Tainted() && !members[p.ID()] {
			t.Fatalf("proc %d still tainted and was never rolled back", p.ID())
		}
		if p.Tainted() {
			t.Fatalf("proc %d tainted after recovery", p.ID())
		}
	}
	m.CheckCoherence()
}

func TestGlobalFaultRecovery(t *testing.T) {
	c := cfg(4)
	sch := NewGlobal(false)
	m := machine.New(c, workload.Uniform(), sch)
	m.Run(400_000)
	victim := m.Procs[1]
	victim.InjectFault()
	m.After(c.DetectLatency/2, func() { sch.FaultDetected(victim) })
	m.Run(400_000)
	m.RunCycles(3_000_000)

	if len(m.St.Rollbacks) != 1 {
		t.Fatalf("rollbacks = %d, want 1", len(m.St.Rollbacks))
	}
	if m.St.Rollbacks[0].Size != 4 {
		t.Fatal("global rollback must include every processor")
	}
	if _, any := m.Ctrl.Memory().AnyPoison(); any {
		t.Fatal("poison survived global recovery")
	}
	if victim.Faulty() {
		t.Fatal("fault not cleared")
	}
}

// No-domino bound (Appendix A): the farthest any processor rolls back
// is bounded by L plus a small number of checkpoint intervals.
func TestNoDominoBound(t *testing.T) {
	c := cfg(4)
	sch := NewRebound(Options{DelayedWB: true})
	m := machine.New(c, workload.Uniform(), sch)
	m.Run(800_000)
	victim := m.Procs[0]
	victim.InjectFault()
	m.After(c.DetectLatency, func() { sch.FaultDetected(victim) })
	m.Run(200_000)
	m.RunCycles(3_000_000)

	if len(m.St.Rollbacks) == 0 {
		t.Fatal("no rollback recorded")
	}
	// Largest gap between successive checkpoint completions seen in the
	// run bounds the interval in cycles.
	var maxGap, last uint64
	for _, ck := range m.St.Checkpoints {
		if ck.End == 0 {
			continue
		}
		if last != 0 && uint64(ck.End)-last > maxGap {
			maxGap = uint64(ck.End) - last
		}
		last = uint64(ck.End)
	}
	bound := uint64(c.DetectLatency) + 4*maxGap + 100_000
	for _, rb := range m.St.Rollbacks {
		if uint64(rb.MaxRollbackCycles) > bound {
			t.Fatalf("rollback distance %d exceeds no-domino bound %d",
				rb.MaxRollbackCycles, bound)
		}
	}
}

func TestBarrierOptimizationCheckpointsAtBarriers(t *testing.T) {
	prof := workload.ByName("Ocean")
	m := run(t, 8, prof, NewRebound(Options{BarrierOpt: true}), 1_200_000)
	barr := 0
	for _, ck := range m.St.Checkpoints {
		if ck.Barrier {
			barr++
		}
	}
	if barr == 0 {
		t.Fatal("barrier optimisation never produced a barrier checkpoint")
	}
	if m.St.L2WritebacksBg == 0 {
		t.Fatal("barrier checkpoints must write back in the background")
	}
}

func TestBarrierOptimizationReducesOverhead(t *testing.T) {
	prof := workload.ByName("Ocean")
	instr := uint64(1_200_000)
	base := run(t, 8, prof, machine.NullScheme{}, instr)
	plain := run(t, 8, prof, NewRebound(Options{}), instr)
	barr := run(t, 8, prof, NewRebound(Options{BarrierOpt: true}), instr)
	op := float64(plain.St.EndCycle)/float64(base.St.EndCycle) - 1
	ob := float64(barr.St.EndCycle)/float64(base.St.EndCycle) - 1
	t.Logf("overhead: Rebound_NoDWB=%.3f Rebound_NoDWB_Barr=%.3f", op, ob)
	if ob >= op {
		t.Fatalf("barrier optimisation did not reduce overhead (%.3f vs %.3f)", ob, op)
	}
}

func TestOutputIOForcesCheckpoint(t *testing.T) {
	prof := workload.Uniform()
	prof.IOPeriod = 30_000
	m := run(t, 4, prof, NewRebound(Options{DelayedWB: true}), 600_000)
	io := 0
	for _, ck := range m.St.Checkpoints {
		if ck.IO {
			io++
		}
	}
	if io == 0 {
		t.Fatal("output I/O never forced a checkpoint")
	}
}

func TestOutputIOHurtsGlobalMore(t *testing.T) {
	prof := workload.ByName("Blackscholes")
	prof.IOPeriod = 40_000 // one core's I/O cadence applies to all cores here
	instr := uint64(800_000)
	glob := run(t, 8, prof, NewGlobal(false), instr)
	rbnd := run(t, 8, prof, NewRebound(Options{DelayedWB: true}), instr)
	gi := glob.St.AvgCheckpointInterval()
	ri := rbnd.St.AvgCheckpointInterval()
	t.Logf("avg checkpoint interval: Global=%.0f Rebound=%.0f", gi, ri)
	// Rebound checkpoints only the I/O processor's small set, so the
	// average per-processor interval stays much longer (Fig 6.7).
	if ri <= gi {
		t.Fatalf("Rebound interval %.0f not longer than Global %.0f under I/O", ri, gi)
	}
}

func TestSchemeNames(t *testing.T) {
	names := map[string]machine.Scheme{
		"Global":             NewGlobal(false),
		"Global_DWB":         NewGlobal(true),
		"Rebound":            NewRebound(Options{DelayedWB: true}),
		"Rebound_NoDWB":      NewRebound(Options{}),
		"Rebound_Barr":       NewRebound(Options{DelayedWB: true, BarrierOpt: true}),
		"Rebound_NoDWB_Barr": NewRebound(Options{BarrierOpt: true}),
		"Rebound_2L":         NewRebound(Options{DelayedWB: true, TwoLevel: true}),
	}
	for want, s := range names {
		if got := s.Name(); got != want {
			t.Fatalf("Name() = %q, want %q", got, want)
		}
	}
}

// TestTwoLevelCheckpointSizes: under Rebound_2L on a 16-processor
// machine (two groups of twoLevelGroupProcs), every committed
// checkpoint is either group-local (at most one group's worth of
// members) or a chip-wide outer checkpoint (all processors) — nothing
// in between, because a collection that crosses the group boundary is
// escalated, never committed. Both levels must actually occur, and the
// outer cadence must bound how many local checkpoints run between
// consecutive outer ones.
func TestTwoLevelCheckpointSizes(t *testing.T) {
	// Blackscholes shares only within clusters of 4, which nest inside
	// the protocol's groups of 8 — so local attempts commit; the outer
	// level still runs on its period. (All-to-all workloads like
	// Uniform escalate every attempt and degenerate to outer-only,
	// which is correct but exercises one level.)
	n := 2 * twoLevelGroupProcs
	m := run(t, n, workload.ByName("Blackscholes"), NewRebound(Options{DelayedWB: true, TwoLevel: true}), 1_600_000)
	if len(m.St.Checkpoints) < 3 {
		t.Fatalf("only %d checkpoints", len(m.St.Checkpoints))
	}
	var local, outer, sinceOuter int
	for _, c := range m.St.Checkpoints {
		switch {
		case c.Size == n:
			outer++
			sinceOuter = 0
		case c.Size <= twoLevelGroupProcs:
			local++
			sinceOuter++
			// Records are appended in start order: once the outer period
			// elapses every new initiation is promoted, so the locals
			// recorded between two outers are bounded by the period plus
			// at most one in-flight local per processor group.
			if sinceOuter > twoLevelOuterEvery+n/twoLevelGroupProcs {
				t.Fatalf("%d local checkpoints since the last outer one (period %d)",
					sinceOuter, twoLevelOuterEvery)
			}
		default:
			t.Fatalf("checkpoint size %d is neither group-local (<=%d) nor chip-wide (%d)",
				c.Size, twoLevelGroupProcs, n)
		}
	}
	if local == 0 || outer == 0 {
		t.Fatalf("two-level run took %d local and %d outer checkpoints; want both levels", local, outer)
	}
	m.CheckCoherence()
}

func TestReboundDeterministic(t *testing.T) {
	one := func() uint64 {
		m := run(t, 4, workload.ByName("Ocean"), NewRebound(Options{DelayedWB: true}), 400_000)
		return uint64(m.St.EndCycle)
	}
	if a, b := one(), one(); a != b {
		t.Fatalf("non-deterministic Rebound run: %d vs %d", a, b)
	}
}
