package core

import (
	"repro/internal/machine"
	"repro/internal/stats"
)

// barrierOp is one proactive checkpoint at a barrier (§4.2.1): a
// processor interested in checkpointing sends BarCK from inside the
// barrier's Update section; every processor writes its dirty lines
// back in the background while running (or spinning) towards the
// barrier; the last arriver may not set the flag until the checkpoint
// completes, so everyone leaves the barrier with a tiny ICHK.
type barrierOp struct {
	r         *Rebound
	initiator int
	remaining int
	gates     []func()
	recIdx    int
	lines     uint64
}

// BarrierUpdate implements machine.Scheme for Rebound. With the
// optimisation enabled, a processor whose interval is at least half
// expired volunteers as the BarCK initiator (the BarCK_sent arbitration
// of Fig 4.2d — at most one initiator per episode).
func (r *Rebound) BarrierUpdate(p *machine.Proc, last bool) {
	if !r.opts.BarrierOpt || r.barOp != nil {
		return
	}
	ps := r.ps[p.ID()]
	if ps.busy || ps.draining || ps.inBarCk {
		return
	}
	if p.InstrSinceCkpt() < r.m.Cfg.CkptInterval/2 {
		return // not interested in checkpointing yet
	}
	op := &barrierOp{
		r:         r,
		initiator: p.ID(),
		remaining: r.m.Cfg.NProcs,
		recIdx:    -1,
	}
	r.barOp = op
	op.recIdx = r.record(stats.CkptRecord{
		Initiator:  p.ID(),
		Size:       r.m.Cfg.NProcs,
		SizeStatic: r.m.Cfg.NProcs,
		SizeExact:  r.m.Cfg.NProcs,
		Start:      r.m.Now(),
		Barrier:    true,
	})
	r.m.Ctrl.Log().Stub(r.m.Now())
	// BarCK messages go out after the Update critical section exits.
	for _, q := range r.m.Procs {
		q := q
		r.m.Send(p.ID(), q.ID(), func() { op.join(q) })
	}
}

// join makes processor q take the proactive checkpoint: a brief stop to
// snapshot, then background writebacks while execution (or the spin at
// the barrier flag) continues.
func (op *barrierOp) join(q *machine.Proc) {
	r := op.r
	qs := r.ps[q.ID()]
	if qs.busy || qs.draining || qs.inBarCk || qs.rop != nil {
		// Engaged in another operation: it sits this one out.
		op.notify()
		return
	}
	qs.inBarCk = true
	q.InCkpt = true
	q.RequestPause(func() {
		rec := q.BeginCheckpoint()
		op.lines += q.MarkDelayed()
		qs.draining = true
		// Barrier-checkpoint writebacks drain at full speed: they hide
		// behind the barrier wait, and the flag is held until they end.
		q.StartDrain(func() {
			qs.draining = false
			q.FinishCheckpoint(rec)
			qs.inBarCk = false
			q.InCkpt = false
			op.notify()
			r.releaseHook(qs)
		})
		q.RushDrain()
		q.OpenNextEpoch(q.Resume)
	})
}

// notify counts one processor done (Update section executed and
// writebacks drained); the last one completes the checkpoint and lets
// the flag be written (Fig 4.2c).
func (op *barrierOp) notify() {
	op.remaining--
	if op.remaining > 0 {
		return
	}
	r := op.r
	if op.recIdx >= 0 {
		rec := &r.m.St.Checkpoints[op.recIdx]
		rec.End = r.m.Now()
		rec.Lines = op.lines
	}
	r.barOp = nil
	gates := op.gates
	op.gates = nil
	for _, proceed := range gates {
		proceed()
	}
}

// detachFromBarCk removes a processor that is being rolled back from an
// in-flight barrier checkpoint: its drain was aborted by RestoreTo, so
// it is counted out to let the operation (and the held flag) complete.
func (r *Rebound) detachFromBarCk(ps *pstate) {
	if !ps.inBarCk {
		return
	}
	ps.inBarCk = false
	ps.draining = false
	ps.p.InCkpt = false
	if r.barOp != nil {
		r.barOp.notify()
	}
}

// BarrierRelease implements machine.Scheme for Rebound: while a barrier
// checkpoint is in flight, the last arriver's flag write is held until
// it completes.
func (r *Rebound) BarrierRelease(p *machine.Proc, proceed func()) {
	if r.barOp == nil {
		proceed()
		return
	}
	r.barOp.gates = append(r.barOp.gates, proceed)
}
