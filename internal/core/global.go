package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Global is the ReVive-style global checkpointing baseline: at every
// checkpoint interval an interrupt stops all processors, they write
// back their dirty lines and register state, synchronise and resume
// (Chapter 5). Global_DWB adds the delayed-writebacks optimisation to
// the same global scheme (evaluated in Fig 6.3).
type Global struct {
	m   *machine.Machine
	dwb bool

	active  bool
	rolling bool
	aborted bool
	// redetect marks a fault detection that arrived mid-rollback; it is
	// re-evaluated when the rollback completes (a fault injected after
	// the restore survives it and needs a rollback of its own).
	redetect  bool
	pendingIO []func()
}

// NewGlobal returns the Global baseline; dwb selects Global_DWB.
func NewGlobal(dwb bool) *Global { return &Global{dwb: dwb} }

// Name implements machine.Scheme.
func (g *Global) Name() string {
	if g.dwb {
		return "Global_DWB"
	}
	return "Global"
}

// Attach implements machine.Scheme.
func (g *Global) Attach(m *machine.Machine) { g.m = m }

// IntervalExpired implements machine.Scheme: the first processor to
// reach the interval triggers the system-wide checkpoint.
func (g *Global) IntervalExpired(p *machine.Proc) {
	if g.active || g.rolling {
		return
	}
	g.runCheckpoint()
}

// OutputIO implements machine.Scheme: output I/O forces a global
// checkpoint first (this is what makes Global expensive on I/O-
// intensive loads, §6.4).
func (g *Global) OutputIO(p *machine.Proc, resume func()) {
	g.pendingIO = append(g.pendingIO, resume)
	if !g.active && !g.rolling {
		g.runCheckpoint()
	}
}

// BarrierUpdate implements machine.Scheme (no barrier optimisation).
func (g *Global) BarrierUpdate(*machine.Proc, bool) {}

// BarrierRelease implements machine.Scheme.
func (g *Global) BarrierRelease(_ *machine.Proc, proceed func()) { proceed() }

func (g *Global) fireIO() {
	io := g.pendingIO
	g.pendingIO = nil
	for _, fn := range io {
		fn()
	}
}

func (g *Global) runCheckpoint() {
	g.active = true
	g.aborted = false
	m := g.m
	start := m.Now()
	for _, p := range m.Procs {
		p.InCkpt = true
	}
	recIdx := len(m.St.Checkpoints)
	m.St.Checkpoints = append(m.St.Checkpoints, stats.CkptRecord{
		Initiator:  -1,
		Size:       m.Cfg.NProcs,
		SizeStatic: m.Cfg.NProcs,
		SizeExact:  m.Cfg.NProcs,
		Start:      start,
	})

	pausedAt := make([]sim.Cycle, m.Cfg.NProcs)
	n := 0
	for _, p := range m.Procs {
		p := p
		p.RequestPause(func() {
			pausedAt[p.ID()] = m.Now()
			n++
			if n == m.Cfg.NProcs {
				g.writeback(recIdx, start, pausedAt)
			}
		})
	}
}

func (g *Global) writeback(recIdx int, start sim.Cycle, pausedAt []sim.Cycle) {
	m := g.m
	m.Ctrl.Log().Stub(m.Now())
	wbStart := m.Now()
	var lines uint64

	if g.dwb {
		// Global with delayed writebacks: mark, resume everyone, drain
		// in the background; the checkpoint completes when the last
		// drain has ended AND every processor has reopened its next
		// interval — only then can a new checkpoint start.
		left := 2 * m.Cfg.NProcs
		done := func() {
			left--
			if left == 0 && !g.aborted {
				g.finish(recIdx, lines)
			}
		}
		for _, p := range m.Procs {
			p := p
			rec := p.BeginCheckpoint()
			lines += p.MarkDelayed()
			p.StartDrain(func() {
				p.FinishCheckpoint(rec)
				done()
			})
			p.OpenNextEpoch(func() {
				m.St.SyncDelay[p.ID()] += uint64(m.Now() - pausedAt[p.ID()])
				p.InCkpt = false
				p.Resume()
				done()
			})
		}
		return
	}

	// Plain Global: everyone stalls for the writebacks, then the final
	// synchronisation releases all processors together (Fig 4.1a).
	type pair struct {
		p        *machine.Proc
		rec      *machine.CkptRec
		wbDoneAt sim.Cycle
	}
	pairs := make([]*pair, 0, m.Cfg.NProcs)
	left := m.Cfg.NProcs
	for _, p := range m.Procs {
		p := p
		pr := &pair{p: p, rec: p.BeginCheckpoint()}
		pairs = append(pairs, pr)
		lines += p.WritebackAllForeground(func() {
			m.St.WBDelay[p.ID()] += uint64(m.Now() - wbStart)
			pr.wbDoneAt = m.Now()
			p.FinishCheckpoint(pr.rec)
			left--
			if g.aborted {
				return // rollback owns the processors now
			}
			if left == 0 {
				now := m.Now()
				reopened := len(pairs)
				for _, q := range pairs {
					id := q.p.ID()
					m.St.WBImbalance[id] += uint64(now - q.wbDoneAt)
					if wbStart > pausedAt[id] {
						m.St.SyncDelay[id] += uint64(wbStart - pausedAt[id])
					}
					qp := q.p
					qp.OpenNextEpoch(func() {
						qp.InCkpt = false
						qp.Resume()
						reopened--
						if reopened == 0 {
							// Only now may the next checkpoint start.
							g.finish(recIdx, lines)
						}
					})
				}
			}
		})
	}
}

func (g *Global) finish(recIdx int, lines uint64) {
	g.active = false
	rec := &g.m.St.Checkpoints[recIdx]
	rec.End = g.m.Now()
	rec.Lines = lines
	g.fireIO()
}

// globalState is Global's snapshot form (machine.SchemeSnapshotter).
type globalState struct {
	aborted, redetect bool
}

// SchemeQuiescent implements machine.SchemeSnapshotter: no checkpoint
// or rollback in flight and no held I/O continuations.
func (g *Global) SchemeQuiescent() bool {
	return !g.active && !g.rolling && len(g.pendingIO) == 0
}

// SchemeSnapshot implements machine.SchemeSnapshotter.
func (g *Global) SchemeSnapshot() any {
	return globalState{aborted: g.aborted, redetect: g.redetect}
}

// SchemeRestore implements machine.SchemeSnapshotter.
func (g *Global) SchemeRestore(state any) {
	s := state.(globalState)
	g.active, g.rolling = false, false
	g.aborted, g.redetect = s.aborted, s.redetect
	g.pendingIO = nil
}

// globalStateImage is the serializable mirror of globalState for the
// persistent-snapshot codec (machine.SchemePersister).
type globalStateImage struct {
	Aborted  bool `json:"aborted"`
	Redetect bool `json:"redetect"`
}

// EncodeSchemeState implements machine.SchemePersister.
func (g *Global) EncodeSchemeState(state any) ([]byte, error) {
	st, ok := state.(globalState)
	if !ok {
		return nil, fmt.Errorf("core: global scheme state has type %T", state)
	}
	return json.Marshal(globalStateImage{Aborted: st.aborted, Redetect: st.redetect})
}

// DecodeSchemeState implements machine.SchemePersister.
func (g *Global) DecodeSchemeState(data []byte) (any, error) {
	var im globalStateImage
	if err := json.Unmarshal(data, &im); err != nil {
		return nil, fmt.Errorf("core: global scheme state: %w", err)
	}
	return globalState{aborted: im.Aborted, redetect: im.Redetect}, nil
}

// FaultDetected implements machine.Scheme: Global recovery rolls back
// every processor in the system.
func (g *Global) FaultDetected(p *machine.Proc) {
	if g.rolling {
		g.redetect = true
		return
	}
	g.rolling = true
	g.aborted = true // aborts any in-flight checkpoint (§3.3.4)
	m := g.m
	start := m.Now()
	for _, q := range m.Procs {
		q.InCkpt = true
	}
	n := 0
	pausedAt := make([]sim.Cycle, m.Cfg.NProcs)
	for _, q := range m.Procs {
		q := q
		q.RequestPause(func() {
			pausedAt[q.ID()] = m.Now()
			n++
			if n != m.Cfg.NProcs {
				return
			}
			_, restored, done := m.RollbackProcs(m.Procs)
			m.St.Rollbacks = append(m.St.Rollbacks, stats.RollRecord{
				Initiator: p.ID(),
				Size:      m.Cfg.NProcs,
				Start:     start,
				End:       done,
				Restored:  restored,
			})
			m.Eng.At(done, func() {
				for _, z := range m.Procs {
					m.St.RollStall[z.ID()] += uint64(m.Now() - pausedAt[z.ID()])
					z.InCkpt = false
					z.Resume()
				}
				g.pendingIO = nil // stale after rollback
				g.rolling = false
				g.active = false
				if g.redetect {
					g.redetect = false
					for _, z := range m.Procs {
						if z.Faulty() || z.Tainted() {
							g.FaultDetected(z)
							break
						}
					}
				}
			})
		})
	}
}

var _ machine.Scheme = (*Global)(nil)
var _ machine.Scheme = (*Rebound)(nil)
