// Package core implements the paper's contribution: the checkpointing
// schemes. Global (and Global_DWB) is the ReVive-style baseline where
// all processors checkpoint together; Rebound is coordinated local
// checkpointing on directory coherence — interaction sets are collected
// with the distributed protocols of §3.3.4/§3.3.5, writebacks can be
// delayed (§4.1), several checkpoints stay live via the Dep register
// sets (§4.2), and checkpointing at barriers can be hidden behind the
// barrier imbalance (§4.2.1).
package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options selects Rebound variants (Fig 4.3a's configuration list).
type Options struct {
	// DelayedWB enables the delayed (background) writebacks of §4.1.
	DelayedWB bool
	// BarrierOpt enables the proactive checkpoint at barriers (§4.2.1).
	BarrierOpt bool
	// TwoLevel enables hierarchical two-level Rebound (the paper's own
	// "scalable" sketch, §7): interaction-set collection is confined to
	// the initiator's processor group; an attempt whose producers cross
	// the group boundary is never committed — it escalates to an outer,
	// chip-wide coordinated checkpoint, which also runs periodically so
	// cross-group dependences are bounded in age. The committed-
	// checkpoint invariant (no member checkpoints ahead of an
	// un-checkpointed producer) holds at both levels, so recovery is
	// unchanged.
	TwoLevel bool
}

// Two-level geometry: processors are statically partitioned into
// groups of twoLevelGroupProcs; after twoLevelOuterEvery committed
// local checkpoints the next initiation is promoted to the outer
// level. Machines with fewer processors than one group degenerate to
// a single group (local attempts never cross, outer still runs on the
// period — the two-level protocol stays exercised at small scales).
const (
	twoLevelGroupProcs = 8
	twoLevelOuterEvery = 4
)

// group returns the static processor group of id.
func (r *Rebound) group(id int) int { return id / twoLevelGroupProcs }

// Rebound is the coordinated local checkpointing scheme.
type Rebound struct {
	m    *machine.Machine
	opts Options
	rng  *sim.RNG
	ps   []*pstate

	barOp *barrierOp

	// Two-level bookkeeping (Options.TwoLevel): sinceOuter counts local
	// checkpoints committed since the last outer one; wantOuter latches
	// an escalation (a local attempt hit a cross-group producer) until
	// an outer checkpoint commits. Plain data — captured in snapshots.
	sinceOuter int
	wantOuter  bool

	// closureSize scratch, pre-sized in Attach and reused across
	// checkpoints so the twice-per-checkpoint closure computation does
	// not allocate.
	clIn    []bool
	clQueue []int
}

// NewRebound returns a Rebound scheme with the given options.
func NewRebound(opts Options) *Rebound { return &Rebound{opts: opts} }

// Name implements machine.Scheme.
func (r *Rebound) Name() string {
	switch {
	case r.opts.TwoLevel:
		return "Rebound_2L"
	case r.opts.DelayedWB && r.opts.BarrierOpt:
		return "Rebound_Barr"
	case r.opts.DelayedWB:
		return "Rebound"
	case r.opts.BarrierOpt:
		return "Rebound_NoDWB_Barr"
	default:
		return "Rebound_NoDWB"
	}
}

// Attach implements machine.Scheme.
func (r *Rebound) Attach(m *machine.Machine) {
	r.m = m
	r.rng = sim.NewRNG(m.Cfg.Seed ^ 0xc0ffee)
	r.ps = make([]*pstate, m.Cfg.NProcs)
	for i, p := range m.Procs {
		r.ps[i] = &pstate{p: p}
	}
	r.clIn = make([]bool, m.Cfg.NProcs)
	r.clQueue = make([]int, 0, m.Cfg.NProcs)
}

// pstate is the per-processor protocol state.
type pstate struct {
	p *machine.Proc
	// busy marks participation in a checkpoint or rollback operation
	// (Busy replies go out while set).
	busy bool
	// draining marks a delayed checkpoint whose background writebacks
	// have not finished; new checkpoint requests are Nacked and the
	// drain is rushed (§4.1).
	draining bool
	// inBarCk marks participation in a barrier-optimised checkpoint.
	inBarCk bool
	// cop/rop point at the operation this processor is a member of.
	cop *ckptOp
	rop *rollOp
	// retryNotBefore implements the random backoff after a Busy
	// collision (§3.3.4).
	retryNotBefore sim.Cycle
	// pausedAt is when the processor stopped for the current operation.
	pausedAt sim.Cycle
	// ioResume is the pending output-I/O continuation: I/O proceeds
	// once a checkpoint covering this processor completes (§6.4).
	ioResume func()
	// redetect marks a fault detection that arrived while this
	// processor was already inside a rollback. The in-flight restore
	// covers a fault that predates it, but a fault injected after the
	// member's state was restored (the processor is still held paused
	// by the protocol) would be silently absorbed — so the detection is
	// re-evaluated when the rollback releases the processor (see
	// startRollback and rollOp.execute).
	redetect bool
}

func (r *Rebound) setBusy(ps *pstate, b bool) {
	ps.busy = b
	ps.p.InCkpt = b
}

// releaseHook runs whenever a processor leaves an operation; it fires a
// pending I/O continuation.
func (r *Rebound) releaseHook(ps *pstate) {
	if !ps.busy && ps.ioResume != nil {
		resume := ps.ioResume
		ps.ioResume = nil
		resume()
	}
}

func (r *Rebound) backoff() sim.Cycle {
	return sim.Cycle(8000 + r.rng.Intn(8000))
}

// IntervalExpired implements machine.Scheme: the processor initiates a
// checkpoint of its interaction set (§3.3.4).
func (r *Rebound) IntervalExpired(p *machine.Proc) {
	ps := r.ps[p.ID()]
	if ps.busy || ps.draining || r.m.Now() < ps.retryNotBefore {
		return
	}
	r.initiateCkpt(ps, false)
}

// OutputIO implements machine.Scheme: output I/O must be preceded by a
// checkpoint; the continuation fires when one covering this processor
// completes.
func (r *Rebound) OutputIO(p *machine.Proc, resume func()) {
	ps := r.ps[p.ID()]
	ps.ioResume = resume
	if ps.busy || ps.draining {
		// Already checkpointing (or draining one): that checkpoint
		// satisfies the I/O; releaseHook fires the continuation.
		if ps.draining {
			p.RushDrain()
		}
		return
	}
	r.initiateCkpt(ps, true)
}

// FaultDetected implements machine.Scheme (see rollback.go).
func (r *Rebound) FaultDetected(p *machine.Proc) { r.startRollback(r.ps[p.ID()]) }

// closureSize computes the interaction set a synchronous collection
// would gather at this instant: a transitive closure over MyProducers,
// honouring the protocol's decline rule (a producer joins only if its
// MyConsumers names the requester). With exact=true the measurement
// shadows (ideal write signature) are used instead; Table 6.1 row 1
// compares the two.
func (r *Rebound) closureSize(initiator int, exact bool) int {
	in := r.clIn
	for i := range in {
		in[i] = false
	}
	queue := r.clQueue[:0]
	in[initiator] = true
	queue = append(queue, initiator)
	size := 1
	for qi := 0; qi < len(queue); qi++ {
		q := queue[qi]
		regs := r.m.Procs[q].Deps().Current()
		producers := regs.MyProducers
		if exact {
			producers = regs.PExact
		}
		producers.ForEach(func(pr int) {
			if in[pr] {
				return
			}
			prRegs := r.m.Procs[pr].Deps().Current()
			consumers := prRegs.MyConsumers
			if exact {
				consumers = prRegs.CExact
			}
			if !consumers.Test(q) {
				return
			}
			in[pr] = true
			size++
			queue = append(queue, pr)
		})
	}
	r.clQueue = queue[:0]
	return size
}

// reboundState is Rebound's snapshot form (machine.SchemeSnapshotter):
// the backoff RNG plus the plain-data residue of each processor's
// protocol state. Everything else (busy flags, operation pointers,
// continuations) is structurally nil/false at a quiescent point.
type reboundState struct {
	rng        uint64
	ps         []reboundProcState
	sinceOuter int
	wantOuter  bool
}

type reboundProcState struct {
	retryNotBefore sim.Cycle
	pausedAt       sim.Cycle
	redetect       bool
}

// SchemeQuiescent implements machine.SchemeSnapshotter: no checkpoint,
// rollback or barrier operation in flight anywhere, no held I/O
// continuations, no drains.
func (r *Rebound) SchemeQuiescent() bool {
	if r.barOp != nil {
		return false
	}
	for _, ps := range r.ps {
		if ps.busy || ps.draining || ps.inBarCk || ps.cop != nil || ps.rop != nil || ps.ioResume != nil {
			return false
		}
	}
	return true
}

// SchemeSnapshot implements machine.SchemeSnapshotter.
func (r *Rebound) SchemeSnapshot() any {
	st := &reboundState{
		rng:        r.rng.State(),
		ps:         make([]reboundProcState, len(r.ps)),
		sinceOuter: r.sinceOuter,
		wantOuter:  r.wantOuter,
	}
	for i, ps := range r.ps {
		st.ps[i] = reboundProcState{
			retryNotBefore: ps.retryNotBefore,
			pausedAt:       ps.pausedAt,
			redetect:       ps.redetect,
		}
	}
	return st
}

// SchemeRestore implements machine.SchemeSnapshotter.
func (r *Rebound) SchemeRestore(state any) {
	st := state.(*reboundState)
	r.rng.Restore(st.rng)
	r.barOp = nil
	r.sinceOuter = st.sinceOuter
	r.wantOuter = st.wantOuter
	for i, ps := range r.ps {
		ps.busy, ps.draining, ps.inBarCk = false, false, false
		ps.cop, ps.rop = nil, nil
		ps.ioResume = nil
		ps.retryNotBefore = st.ps[i].retryNotBefore
		ps.pausedAt = st.ps[i].pausedAt
		ps.redetect = st.ps[i].redetect
	}
}

// reboundStateImage is the serializable mirror of reboundState for the
// persistent-snapshot codec (machine.SchemePersister).
type reboundStateImage struct {
	RNG   uint64             `json:"rng"`
	Procs []reboundProcImage `json:"procs"`
	// Two-level fields are omitted when zero so the encoded bytes of
	// every pre-existing scheme's state are unchanged (persisted
	// snapshots stay byte-stable across this addition).
	SinceOuter int  `json:"since_outer,omitempty"`
	WantOuter  bool `json:"want_outer,omitempty"`
}

type reboundProcImage struct {
	RetryNotBefore uint64 `json:"retry_not_before"`
	PausedAt       uint64 `json:"paused_at"`
	Redetect       bool   `json:"redetect"`
}

// EncodeSchemeState implements machine.SchemePersister.
func (r *Rebound) EncodeSchemeState(state any) ([]byte, error) {
	st, ok := state.(*reboundState)
	if !ok {
		return nil, fmt.Errorf("core: rebound scheme state has type %T", state)
	}
	im := reboundStateImage{
		RNG:        st.rng,
		Procs:      make([]reboundProcImage, len(st.ps)),
		SinceOuter: st.sinceOuter,
		WantOuter:  st.wantOuter,
	}
	for i, ps := range st.ps {
		im.Procs[i] = reboundProcImage{
			RetryNotBefore: uint64(ps.retryNotBefore),
			PausedAt:       uint64(ps.pausedAt),
			Redetect:       ps.redetect,
		}
	}
	return json.Marshal(im)
}

// DecodeSchemeState implements machine.SchemePersister.
func (r *Rebound) DecodeSchemeState(data []byte) (any, error) {
	var im reboundStateImage
	if err := json.Unmarshal(data, &im); err != nil {
		return nil, fmt.Errorf("core: rebound scheme state: %w", err)
	}
	st := &reboundState{
		rng:        im.RNG,
		ps:         make([]reboundProcState, len(im.Procs)),
		sinceOuter: im.SinceOuter,
		wantOuter:  im.WantOuter,
	}
	for i, ps := range im.Procs {
		st.ps[i] = reboundProcState{
			retryNotBefore: sim.Cycle(ps.RetryNotBefore),
			pausedAt:       sim.Cycle(ps.PausedAt),
			redetect:       ps.Redetect,
		}
	}
	return st, nil
}

// record appends a checkpoint record and returns its index.
func (r *Rebound) record(rec stats.CkptRecord) int {
	r.m.St.Checkpoints = append(r.m.St.Checkpoints, rec)
	return len(r.m.St.Checkpoints) - 1
}
